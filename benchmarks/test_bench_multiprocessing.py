"""T5: the abstract architecture on real OS processes.

The rewritten programs run asynchronously on ``multiprocessing`` queues
with counting-based quiescence detection, and pool exactly the
sequential answer.  Wall-clock speedup on this 2-core container is not
the point (Python pickling dominates at these sizes); correctness,
termination and identical counts to the simulator are.
"""

from _common import emit

from repro.bench import ExperimentTable, sequential_baseline
from repro.parallel import example1_scheme, example3_scheme, run_parallel
from repro.parallel.mp import run_multiprocessing
from repro.workloads import make_workload


def test_multiprocessing_matches_simulator(benchmark):
    workload = make_workload("tree", 120, seed=8)
    output, seq = sequential_baseline(workload)

    table = ExperimentTable(
        experiment="T5",
        title="real multiprocessing execution on tree-120 "
              f"(seq firings={seq.total_firings()})",
        headers=("scheme", "N", "ok", "firings", "sent", "probe waves",
                 "wall (s)"),
    )

    def run_example3():
        return run_multiprocessing(
            example3_scheme(workload.program, (0, 1)), workload.database,
            timeout=90)

    result = benchmark.pedantic(run_example3, rounds=1, iterations=1)
    cases = [("example3", (0, 1), result)]
    cases.append(("example3", (0, 1, 2, 3), run_multiprocessing(
        example3_scheme(workload.program, (0, 1, 2, 3)), workload.database,
        timeout=90)))
    cases.append(("example1", (0, 1), run_multiprocessing(
        example1_scheme(workload.program, (0, 1)), workload.database,
        timeout=90)))

    for label, processors, mp_result in cases:
        ok = (mp_result.relation("anc").as_set()
              == output.relation("anc").as_set())
        table.add_row(label, len(processors), "yes" if ok else "NO",
                      mp_result.metrics.total_firings(),
                      mp_result.metrics.total_sent(),
                      mp_result.metrics.control_messages,
                      round(mp_result.wall_seconds, 3))
        assert ok

    # The simulator and the real execution agree on every count the
    # paper reasons about.
    sim = run_parallel(example3_scheme(workload.program, (0, 1)),
                       workload.database)
    assert result.metrics.total_firings() == sim.metrics.total_firings()
    assert result.metrics.total_sent() == sim.metrics.total_sent()
    table.add_note("firings and channel tuples identical to the "
                   "deterministic simulator (asynchrony does not change "
                   "the counts of a non-redundant scheme)")
    emit(table)
