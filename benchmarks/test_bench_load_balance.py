"""T8 (extension): the performance study the paper defers to future work.

Section 8: "detailed performance studies that would consider such
issues as load balancing, processor utilization etc."  We report the
per-scheme work distribution (Jain fairness index) and round-level
utilisation on skewed and uniform workloads.
"""

import pytest
from _common import emit

from repro.bench import load_balance_table
from repro.workloads import make_workload


@pytest.mark.parametrize("kind,size", [
    ("dag", 150),       # fairly uniform fan-in
    ("chain", 80),      # worst case: one long dependency chain
    ("layered", 240),   # wide, parallel-friendly
])
def test_load_balance(benchmark, kind, size):
    workload = make_workload(kind, size, seed=4)
    table = benchmark.pedantic(
        load_balance_table, args=(workload, range(4)), rounds=1, iterations=1)
    table.add_note("Jain index 1.0 = perfectly even work; 0.25 = one of "
                   "four processors does everything")
    emit(table)
    for value in table.column("jain index"):
        assert 0.25 <= value <= 1.0


def test_hash_balance_improves_with_data_size(benchmark):
    """Hash partitioning balances better as the workload grows."""
    from repro.bench import ExperimentTable
    from repro.parallel import example3_scheme, run_parallel

    def measure():
        rows = []
        for size in (30, 100, 300):
            workload = make_workload("dag", size, seed=4)
            program = example3_scheme(workload.program, tuple(range(4)))
            result = run_parallel(program, workload.database)
            rows.append((size, round(result.metrics.load_balance(), 3)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = ExperimentTable(
        experiment="T8",
        title="example3 load balance vs workload size (4 processors)",
        headers=("dag size", "jain index"),
    )
    for row in rows:
        table.add_row(*row)
    emit(table)
    indexes = [value for _size, value in rows]
    assert indexes[-1] >= indexes[0] - 0.05
