"""T2: the Section 6 redundancy/communication spectrum.

The paper: "By varying the extent of communication ... we get
executions which are points along a spectrum whose extremes are
characterized by non-redundancy and no communication."  We sweep the
per-processor retention fraction from 0 (Section 3's non-redundant
scheme) to 1 (Wolfson's communication-free scheme) and report both
quantities.
"""

from _common import emit

from repro.bench import tradeoff_sweep
from repro.workloads import make_workload

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_tradeoff_spectrum_dag(benchmark):
    workload = make_workload("dag", 150, seed=9)
    table = benchmark.pedantic(
        tradeoff_sweep, args=(workload, range(4)),
        kwargs={"fractions": FRACTIONS}, rounds=1, iterations=1)
    table.add_note("measured nuance: redundancy is not strictly monotone "
                   "near keep=1.0 — partial retention lets a tuple be "
                   "processed at its producers AND its hash home, while "
                   "full retention confines it to its producers")
    emit(table)
    sent = table.column("sent")
    redundancy = table.column("redundancy")
    # Communication falls monotonically along the spectrum.
    assert all(a >= b for a, b in zip(sent, sent[1:]))
    assert sent[-1] == 0
    # The non-redundant extreme is exactly non-redundant.
    assert redundancy[0] == 0
    # Redundancy appears once communication is given up.
    assert max(redundancy[1:]) > 0


def test_tradeoff_spectrum_tree(benchmark):
    """On a tree every tuple has one derivation: redundancy stays 0
    along the whole spectrum, communication still falls to zero."""
    workload = make_workload("tree", 150, seed=9)
    table = benchmark.pedantic(
        tradeoff_sweep, args=(workload, range(4)),
        kwargs={"fractions": FRACTIONS}, rounds=1, iterations=1)
    emit(table)
    assert all(value == 0 for value in table.column("redundancy"))
    sent = table.column("sent")
    assert all(a >= b for a, b in zip(sent, sent[1:]))
