"""T6: the Section 7 general scheme (Example 8) on non-linear programs."""

from _common import emit

from repro.bench import general_scheme_table
from repro.datalog import Variable
from repro.engine import evaluate
from repro.parallel import HashDiscriminator, RuleSpec, rewrite_general, run_parallel
from repro.workloads import make_workload, nonlinear_ancestor_program

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def test_general_scheme_across_programs(benchmark):
    workloads = [
        make_workload("nonlinear-dag", 70, seed=6),
        make_workload("same-generation", 48, seed=6),
        make_workload("dag", 120, seed=6),
    ]
    table = benchmark.pedantic(
        general_scheme_table, args=(workloads, range(4)),
        rounds=1, iterations=1)
    emit(table)
    assert set(table.column("ok")) == {"yes"}
    # Theorem 6: never more parallel firings than sequential.
    for seq, par in zip(table.column("seq firings"),
                        table.column("par firings")):
        assert par <= seq


def test_example8_paper_choice(benchmark):
    """Example 8 verbatim: v(r1) = <Y>, v(r2) = <Z>, one shared h."""
    workload = make_workload("nonlinear-dag", 70, seed=6)
    program = nonlinear_ancestor_program()
    processors = tuple(range(4))
    h = HashDiscriminator(processors)
    specs = {0: RuleSpec((Y,), h), 1: RuleSpec((Z,), h)}
    parallel = rewrite_general(program, processors, specs)

    result = benchmark.pedantic(
        run_parallel, args=(parallel, workload.database),
        rounds=1, iterations=1)
    expected = evaluate(program, workload.database)
    assert (result.relation("anc").as_set()
            == expected.relation("anc").as_set())
    assert (result.metrics.total_firings()
            <= expected.counters.total_firings())
    from repro.bench import ExperimentTable
    table = ExperimentTable(
        experiment="T6",
        title="Example 8 verbatim (v(r1)=<Y>, v(r2)=<Z>) on nonlinear-dag-70",
        headers=("metric", "value"),
    )
    table.add_row("answers match sequential", "yes")
    table.add_row("sequential firings", expected.counters.total_firings())
    table.add_row("parallel firings", result.metrics.total_firings())
    table.add_row("tuples sent", result.metrics.total_sent())
    table.add_row("par fragmented by h(Y)",
                  parallel.fragmentation.requirements["par"])
    emit(table)
