"""T7: compile-time network graphs are sound and tight.

Soundness — no execution ever uses a channel outside the derived graph
(data-independence, Section 5).  Minimality evidence — random inputs
witness (almost) every derived edge; the paper proves per-edge witness
databases exist [9], we search for them empirically.
"""

from _common import emit

from repro.bench import network_minimality_table
from repro.datalog import Variable
from repro.facts import Database
from repro.parallel import LinearDiscriminator, TupleDiscriminator
from repro.workloads import (
    chain3_program,
    example6_program,
    random_dag_edges,
    random_tree_edges,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
U, V, W = Variable("U"), Variable("V"), Variable("W")


def test_example6_network_minimality(benchmark):
    def database_factory(seed):
        return Database.from_facts({
            "q": random_dag_edges(18, parents=2, seed=seed),
            "r": random_dag_edges(18, parents=2, seed=seed + 500),
        })

    table = benchmark.pedantic(
        network_minimality_table,
        args=(example6_program(), (Y, Z), (X, Y), TupleDiscriminator(2),
              database_factory),
        kwargs={"trials": 25}, rounds=1, iterations=1)
    table.add_note("program: p(X,Y) :- p(Y,Z), r(X,Z); "
                   "h(a,b) = (g(a), g(b)) over 4 processors (Figure 3)")
    emit(table)
    (row,) = table.rows
    values = dict(zip(table.headers, row))
    assert values["sound"] == "yes"
    assert values["witness coverage"] >= 0.5


def test_example7_network_minimality(benchmark):
    import random

    def database_factory(seed):
        rng = random.Random(seed)
        s_facts = [(rng.randrange(6), rng.randrange(6), rng.randrange(6))
                   for _ in range(10)]
        q_facts = [(rng.randrange(6), rng.randrange(6)) for _ in range(14)]
        return Database.from_facts({"s": s_facts, "q": q_facts})

    table = benchmark.pedantic(
        network_minimality_table,
        args=(chain3_program(), (V, W, Z), (U, V, W),
              LinearDiscriminator((1, -1, 1)), database_factory),
        kwargs={"trials": 25}, rounds=1, iterations=1)
    table.add_note("program: p(U,V,W) :- p(V,W,Z), q(U,Z); "
                   "h = g(a1) - g(a2) + g(a3) over {-1,0,1,2} (Figure 4)")
    emit(table)
    (row,) = table.rows
    values = dict(zip(table.headers, row))
    assert values["sound"] == "yes"
    assert values["witness coverage"] >= 0.5
