"""T9: distributed termination detection overhead.

The paper delegates termination to "standard algorithms of Distributed
Computing" [5, 7].  We run Safra's token-ring detector alongside the
data computation and measure its control-message count and detection
delay as the ring grows.
"""

from _common import emit

from repro.bench import termination_overhead_table
from repro.workloads import make_workload


def test_termination_detection_overhead(benchmark):
    workload = make_workload("tree", 100, seed=2)
    table = benchmark.pedantic(
        termination_overhead_table, args=(workload, (1, 2, 4, 8, 16)),
        rounds=1, iterations=1)
    table.add_note("control messages are token hops; detection delay is "
                   "idle rounds between actual quiescence and its "
                   "detection — both scale linearly with the ring size, "
                   "independent of data volume")
    emit(table)
    control = table.column("control messages")
    delay = table.column("detection delay (rounds)")
    assert all(a <= b for a, b in zip(control, control[1:]))
    assert all(value >= 0 for value in delay)
    data = table.column("data tuples sent")
    # Detector overhead is tiny relative to data traffic at scale.
    assert control[-1] < max(data[-1], 64)
