"""T3: Theorems 2 and 6 — semi-naive non-redundancy, measured.

Across workload shapes and schemes with a shared discriminating
function, the total number of successful ground substitutions over all
processors never exceeds the sequential semi-naive count.
"""

from _common import emit

from repro.bench import redundancy_table
from repro.workloads import make_workload


def test_non_redundancy_across_workloads(benchmark):
    workloads = [
        make_workload("chain", 60),
        make_workload("tree", 120, seed=3),
        make_workload("dag", 120, seed=3),
        make_workload("grid", 49),
        make_workload("cycle", 25),
        make_workload("nonlinear-dag", 60, seed=3),
        make_workload("same-generation", 32, seed=3),
    ]
    table = benchmark.pedantic(
        redundancy_table, args=(workloads, range(4)), rounds=1, iterations=1)
    emit(table)
    assert set(table.column("ok")) == {"yes"}
    # On most shapes the bound is tight: parallel firings == sequential.
    assert any(value == 0 for value in table.column("redundancy"))
