"""F1–F4: regenerate every figure of the paper.

* Figure 1 — dataflow graph of ``p(U,V,W) :- p(V,W,Z), q(U,Z)``.
* Figure 2 — dataflow graph of the ancestor rule (self-loop at 2).
* Figure 3 — minimal network graph of Example 6 over {0,1}^2.
* Figure 4 — minimal network graph of Example 7 via the linear system.
"""

from _common import emit_text

from repro.datalog import Variable
from repro.network import (
    build_linear_system,
    dataflow_edges,
    derive_network,
    format_dataflow,
    solve_linear_network,
)
from repro.parallel import LinearDiscriminator, TupleDiscriminator
from repro.workloads import ancestor_program, chain3_program, example6_program

U, V, W = Variable("U"), Variable("V"), Variable("W")
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def test_figure1_dataflow_chain(benchmark):
    program = chain3_program()
    edges = benchmark(dataflow_edges, program)
    assert edges == ((1, 2), (2, 3))
    emit_text("F1", "Figure 1 — dataflow graph of "
                    "p(U,V,W) :- p(V,W,Z), q(U,Z):\n"
                    f"  {format_dataflow(program)}\n"
                    "paper: 1 -> 2 -> 3  [reproduced]")


def test_figure2_dataflow_ancestor(benchmark):
    program = ancestor_program()
    edges = benchmark(dataflow_edges, program)
    assert edges == ((2, 2),)
    emit_text("F2", "Figure 2 — dataflow graph of the ancestor rule:\n"
                    "  2 -> 2 (self-loop)\n"
                    "paper: cycle at position 2, hence a zero-communication "
                    "choice exists (Theorem 3)  [reproduced]")


def test_figure3_example6_network(benchmark):
    program = example6_program()
    h = TupleDiscriminator(2)
    network = benchmark(derive_network, program, (Y, Z), (X, Y), h)
    assert not network.has_edge((0, 0), (0, 1))
    assert not network.has_edge((0, 0), (1, 1))
    assert network.has_edge((0, 0), (1, 0))
    emit_text("F3", "Figure 3 — minimal network graph of Example 6 "
                    "(h(a,b) = (g(a), g(b))):\n"
                    + network.to_ascii() + "\n"
                    "paper: (00) never sends to (01) or (11); "
                    "(00) -> (10) possible  [reproduced]")


def test_figure4_example7_network(benchmark):
    program = chain3_program()

    def derive():
        return solve_linear_network(program, v_r=(V, W, Z), v_e=(U, V, W),
                                    coefficients=(1, -1, 1))

    network = benchmark(derive)
    assert set(network.processors) == {-1, 0, 1, 2}
    systems = build_linear_system(program, v_r=(V, W, Z), v_e=(U, V, W),
                                  coefficients=(1, -1, 1))
    recursive = systems[1]
    cross_check = derive_network(program, v_r=(V, W, Z), v_e=(U, V, W),
                                 h=LinearDiscriminator((1, -1, 1)))
    assert cross_check.edges() == network.edges()
    emit_text("F4", "Figure 4 — network graph of Example 7, derived by "
                    "solving the paper's equations (4)/(5):\n"
                    + recursive.render() + "\n"
                    "subject to x in {0,1}^4; solutions (u, v) are edges:\n"
                    + network.to_ascii() + "\n"
                    "cross-checked against the generic symbolic enumeration "
                    "[identical edge sets]")
